package pugz_test

import (
	"errors"
	"testing"

	pugz "repro"
)

func scanFixture(t *testing.T, level int) (data, gz []byte) {
	t.Helper()
	return extFastq(6000, 17), extGz(t, 6000, 17, level)
}

// TestScanBlocksExtents checks the structural invariants of a block
// scan: blocks tile both the compressed bit space and the decompressed
// byte space with no gaps, only the last block is final, and every
// type is one of the three DEFLATE kinds.
func TestScanBlocksExtents(t *testing.T) {
	for _, level := range []int{0, 1, 6, 9} {
		data, gz := scanFixture(t, level)
		blocks, err := pugz.ScanBlocks(gz)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if len(blocks) == 0 {
			t.Fatalf("level %d: no blocks", level)
		}
		if blocks[0].StartBit != 0 {
			t.Fatalf("level %d: first block starts at bit %d", level, blocks[0].StartBit)
		}
		if blocks[0].OutStart != 0 {
			t.Fatalf("level %d: first block output starts at %d", level, blocks[0].OutStart)
		}
		for i, b := range blocks {
			switch b.Type {
			case "stored", "fixed", "dynamic":
			default:
				t.Fatalf("level %d block %d: bad type %q", level, i, b.Type)
			}
			if b.EndBit <= b.StartBit {
				t.Fatalf("level %d block %d: empty bit extent [%d,%d)", level, i, b.StartBit, b.EndBit)
			}
			if b.Final != (i == len(blocks)-1) {
				t.Fatalf("level %d block %d/%d: Final=%v", level, i, len(blocks), b.Final)
			}
			if i > 0 {
				if b.StartBit != blocks[i-1].EndBit {
					t.Fatalf("level %d block %d: bit gap %d -> %d", level, i, blocks[i-1].EndBit, b.StartBit)
				}
				if b.OutStart != blocks[i-1].OutEnd {
					t.Fatalf("level %d block %d: output gap %d -> %d", level, i, blocks[i-1].OutEnd, b.OutStart)
				}
			}
		}
		if last := blocks[len(blocks)-1]; last.OutEnd != int64(len(data)) {
			t.Fatalf("level %d: blocks cover %d output bytes, want %d", level, last.OutEnd, len(data))
		}
		if level == 0 {
			for i, b := range blocks {
				if b.Type != "stored" {
					t.Fatalf("level 0 block %d: type %q", i, b.Type)
				}
			}
		}
	}
}

// TestScanBlocksReaderAtSource checks that a scan through a windowed
// (non-slice) byte source returns the identical block list.
func TestScanBlocksReaderAtSource(t *testing.T) {
	_, gz := scanFixture(t, 6)
	want, err := pugz.ScanBlocks(gz)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pugz.NewFile(&trackingReaderAt{data: gz}, int64(len(gz)), pugz.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ScanBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d blocks vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("block %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestFindBlockBoundaries probes FindBlock at the edges: offset zero,
// a member boundary in a multi-member file, and offsets at or past the
// end of the compressed file.
func TestFindBlockBoundaries(t *testing.T) {
	_, gzA := scanFixture(t, 6)
	gzB := extGz(t, 6000, 18, 6)
	gz := append(append([]byte{}, gzA...), gzB...)

	blocks, err := pugz.ScanBlocks(gz) // first member only
	if err != nil {
		t.Fatal(err)
	}
	boundary := map[int64]bool{}
	for _, b := range blocks {
		boundary[b.StartBit] = true
	}

	// From offset 0 the finder must confirm an actual block start of
	// the first member (never bit 0 itself: the scan skips the final
	// block's ambiguity by requiring confirmations, but bit 0 is a
	// valid confirmed start).
	bit, err := pugz.FindBlock(gz, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !boundary[bit] {
		t.Fatalf("FindBlock(0) = bit %d, not a block boundary of the first member", bit)
	}

	// Near the member boundary the finder syncs into the second member
	// (payload bits keep counting across the trailer/header bytes).
	memberEnd := int64(len(gzA))
	bit2, err := pugz.FindBlock(gz, memberEnd-64)
	if err != nil {
		t.Fatalf("FindBlock near member boundary: %v", err)
	}
	if bit2 <= blocks[len(blocks)-1].StartBit {
		t.Fatalf("FindBlock(%d) = bit %d, expected a start past the first member's final block",
			memberEnd-64, bit2)
	}

	// At and past the end of the file: ErrNotFound, not a crash.
	for _, off := range []int64{int64(len(gz)), int64(len(gz)) + 1000} {
		if _, err := pugz.FindBlock(gz, off); !errors.Is(err, pugz.ErrNotFound) {
			t.Fatalf("FindBlock(%d): err = %v, want ErrNotFound", off, err)
		}
	}

	// The last few bytes of the stream hold only the final block (and
	// the trailer), which is never a confirmable target.
	if _, err := pugz.FindBlock(gz, int64(len(gz))-4); !errors.Is(err, pugz.ErrNotFound) {
		t.Fatalf("FindBlock near EOF: err = %v, want ErrNotFound", err)
	}
}
