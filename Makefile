# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci vet lint staticcheck build test race race-internal race-serve \
	race-diff race-rest race-cmd fuzz-smoke bench bench-smoke benchdiff \
	api apicheck serve loadtest clean

ci: vet lint staticcheck build apicheck race fuzz-smoke

# Public API surface gate: API.txt is the committed `go doc -all`
# rendering of the root package. apicheck regenerates it and fails on
# any drift, so every exported-surface change is explicit in review;
# after an intentional change, `make api` refreshes the committed file.
api:
	$(GO) doc -all . > API.txt

apicheck:
	@mkdir -p .tmp
	@$(GO) doc -all . > .tmp/API.txt
	@diff -u API.txt .tmp/API.txt \
		|| { echo "apicheck: exported API drifted from API.txt; run 'make api' and commit if intended" >&2; exit 1; }

vet:
	$(GO) vet ./...

# Invariant gate: the repo's own analyzer suite (internal/analysis,
# driven by cmd/pugzvet) run through `go vet -vettool`, so findings
# carry file:line positions and per-package caching like any vet pass.
# The tree must stay finding-free — there is no suppression syntax and
# no baseline file by design; fix the code or fix the analyzer.
PUGZVET := .tmp/pugzvet
lint:
	@mkdir -p .tmp
	$(GO) build -o $(PUGZVET) ./cmd/pugzvet
	$(GO) vet -vettool=$(abspath $(PUGZVET)) ./...

# Optional extra linting: runs staticcheck when (and only when) a
# staticcheck binary is already on PATH. The container and CI cache may
# lack network access, so this is a local convenience, not a gate —
# CI installs its own copy in the lint job.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: binary not found on PATH; skipping (CI runs it)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race suite runs as separate package groups with explicit
# timeouts (mirrored by CI), so one slow group cannot mask which area
# regressed and a local reproduction can target just the group that
# failed — essential on small boxes where the monolithic run crawls.
RACETIMEOUT ?= 15m
# Root-package split: the differential/roundtrip suite vs the
# streaming/file/index surfaces. The two patterns are complements by
# construction (-run vs -skip on the same expression), so every root
# test runs under -race in exactly one group.
DIFFPAT := ^(TestDifferential|TestDecompress|TestCorrupt|TestFullCircle|TestCompress|TestClassify|TestPublic|TestExperiments)

race: race-internal race-serve race-diff race-rest race-cmd

# The serving subsystem is its own group: its eviction-storm and
# concurrency stress tests dominate the internal-package wall time.
race-internal:
	$(GO) test -race -timeout $(RACETIMEOUT) $$($(GO) list ./internal/... | grep -v '/internal/serve')

race-serve:
	$(GO) test -race -timeout $(RACETIMEOUT) ./internal/serve/...

race-diff:
	$(GO) test -race -timeout $(RACETIMEOUT) -run '$(DIFFPAT)' .

race-rest:
	$(GO) test -race -timeout $(RACETIMEOUT) -skip '$(DIFFPAT)' .

race-cmd:
	$(GO) test -race -timeout $(RACETIMEOUT) ./cmd/...

# Short-iteration fuzz smoke over both differential targets: enough to
# replay the checked-in corpus plus a burst of fresh mutations.
fuzz-smoke:
	$(GO) test . -run '^$$' -fuzz FuzzDecompress -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz FuzzNewReader -fuzztime $(FUZZTIME)

# Full benchmark sweep with allocation accounting, captured as test2json
# event lines for the perf trajectory (BENCH_PR2.json, BENCH_PR4.json,
# ...). Set PR to this PR's number when capturing a new checkpoint —
# `make bench PR=5` writes BENCH_PR5.json — and commit the file;
# `make benchdiff` (and CI) compares the two most recent captures.
# BENCHTIME can be raised for stable numbers on quiet hardware.
PR ?= 9
BENCHTIME ?= 1x
BENCHOUT ?= BENCH_PR$(PR).json
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . > $(BENCHOUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCHOUT) | sed 's/"Output":"//;s/"$$//;s/\\t/\t/g;s/\\n//' || true

# Quick smoke: every benchmark runs once, no JSON capture. CI uses this
# to catch bit-rotted benchmark code without paying for real timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Perf-trajectory gate: diff the two most recent BENCH_PRn.json
# captures; >30% ns/op or allocs/op regressions on the gated hot-path
# benchmarks fail, everything else warns (see cmd/benchdiff).
benchdiff:
	$(GO) run ./cmd/benchdiff -auto .

# --- Serving daemon -------------------------------------------------
# `make serve` mounts a synthetic blob corpus (generated once into
# .tmp/blobs, one blob with a sidecar index) under a local pugzd;
# `make loadtest` is the end-to-end smoke: daemon up, a short mixed
# sequential/random trace (every response must be a correct 206), then
# SIGTERM and an asserted clean exit 0.
SERVEADDR ?= 127.0.0.1:8457
BLOBDIR := .tmp/blobs

$(BLOBDIR)/.stamp:
	mkdir -p $(BLOBDIR)
	$(GO) run ./cmd/gzsynth -reads 20000 -seed 41 -o $(BLOBDIR)/reads.fastq.gz
	$(GO) run ./cmd/gzsynth -kind dna -bytes 2000000 -seed 42 -level 9 -o $(BLOBDIR)/genome.gz
	$(GO) run ./cmd/gzsynth -reads 8000 -seed 43 -level 0 -o $(BLOBDIR)/stored.gz
	$(GO) run ./cmd/pugz -mkindex $(BLOBDIR)/reads.fastq.gz.gzx $(BLOBDIR)/reads.fastq.gz
	touch $@

serve: $(BLOBDIR)/.stamp
	$(GO) run ./cmd/pugzd -addr $(SERVEADDR) -dir $(BLOBDIR)

loadtest: $(BLOBDIR)/.stamp
	$(GO) build -o .tmp/pugzd ./cmd/pugzd
	@set -e; \
	.tmp/pugzd -addr $(SERVEADDR) -dir $(BLOBDIR) & pid=$$!; \
	ok=0; .tmp/pugzd -loadtest -duration 2s -c 8 http://$(SERVEADDR) && ok=1; \
	kill -TERM $$pid; wait $$pid; rc=$$?; \
	if [ $$ok -ne 1 ]; then echo "loadtest: trace had errors" >&2; exit 1; fi; \
	if [ $$rc -ne 0 ]; then echo "loadtest: daemon exit $$rc, want clean 0" >&2; exit 1; fi; \
	echo "loadtest: trace clean, daemon drained and exited 0"

clean:
	rm -rf .tmp
