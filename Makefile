# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci vet build test race fuzz-smoke bench clean

ci: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-iteration fuzz smoke over both differential targets: enough to
# replay the checked-in corpus plus a burst of fresh mutations.
fuzz-smoke:
	$(GO) test . -run '^$$' -fuzz FuzzDecompress -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz FuzzNewReader -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	rm -rf .tmp
