# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci vet build test race fuzz-smoke bench bench-smoke clean

ci: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-iteration fuzz smoke over both differential targets: enough to
# replay the checked-in corpus plus a burst of fresh mutations.
fuzz-smoke:
	$(GO) test . -run '^$$' -fuzz FuzzDecompress -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz FuzzNewReader -fuzztime $(FUZZTIME)

# Full benchmark sweep with allocation accounting, captured as test2json
# event lines for the perf trajectory (BENCH_PR2.json, ...); BENCHTIME
# can be raised for stable numbers on quiet hardware.
BENCHTIME ?= 1x
BENCHOUT ?= BENCH_PR2.json
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . > $(BENCHOUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCHOUT) | sed 's/"Output":"//;s/"$$//;s/\\t/\t/g;s/\\n//' || true

# Quick smoke: every benchmark runs once, no JSON capture. CI uses this
# to catch bit-rotted benchmark code without paying for real timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

clean:
	rm -rf .tmp
