# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci vet build test race race-internal race-diff race-rest race-cmd \
	fuzz-smoke bench bench-smoke benchdiff clean

ci: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race suite runs as separate package groups with explicit
# timeouts (mirrored by CI), so one slow group cannot mask which area
# regressed and a local reproduction can target just the group that
# failed — essential on small boxes where the monolithic run crawls.
RACETIMEOUT ?= 15m
# Root-package split: the differential/roundtrip suite vs the
# streaming/file/index surfaces. The two patterns are complements by
# construction (-run vs -skip on the same expression), so every root
# test runs under -race in exactly one group.
DIFFPAT := ^(TestDifferential|TestDecompress|TestCorrupt|TestFullCircle|TestCompress|TestClassify|TestPublic|TestExperiments)

race: race-internal race-diff race-rest race-cmd

race-internal:
	$(GO) test -race -timeout $(RACETIMEOUT) ./internal/...

race-diff:
	$(GO) test -race -timeout $(RACETIMEOUT) -run '$(DIFFPAT)' .

race-rest:
	$(GO) test -race -timeout $(RACETIMEOUT) -skip '$(DIFFPAT)' .

race-cmd:
	$(GO) test -race -timeout $(RACETIMEOUT) ./cmd/...

# Short-iteration fuzz smoke over both differential targets: enough to
# replay the checked-in corpus plus a burst of fresh mutations.
fuzz-smoke:
	$(GO) test . -run '^$$' -fuzz FuzzDecompress -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz FuzzNewReader -fuzztime $(FUZZTIME)

# Full benchmark sweep with allocation accounting, captured as test2json
# event lines for the perf trajectory (BENCH_PR2.json, BENCH_PR4.json,
# ...). Set PR to this PR's number when capturing a new checkpoint —
# `make bench PR=5` writes BENCH_PR5.json — and commit the file;
# `make benchdiff` (and CI) compares the two most recent captures.
# BENCHTIME can be raised for stable numbers on quiet hardware.
PR ?= 7
BENCHTIME ?= 1x
BENCHOUT ?= BENCH_PR$(PR).json
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . > $(BENCHOUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCHOUT) | sed 's/"Output":"//;s/"$$//;s/\\t/\t/g;s/\\n//' || true

# Quick smoke: every benchmark runs once, no JSON capture. CI uses this
# to catch bit-rotted benchmark code without paying for real timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Perf-trajectory gate: diff the two most recent BENCH_PRn.json
# captures; >30% ns/op or allocs/op regressions on the gated hot-path
# benchmarks fail, everything else warns (see cmd/benchdiff).
benchdiff:
	$(GO) run ./cmd/benchdiff -auto .

clean:
	rm -rf .tmp
