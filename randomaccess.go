package pugz

import (
	"fmt"

	"repro/internal/fastq"
	"repro/internal/framing"
	"repro/internal/tracked"
)

// Undetermined is the byte standing in for any unresolved character in
// random-access output ('?' throughout the paper's figures).
const Undetermined = tracked.UndeterminedByte

// Defaults for the random-access record machinery, shared by the API,
// the CLIs and godoc so they cannot drift.
const (
	// DefaultMinSeqLen is the default minimum extracted-sequence
	// length of the FASTQ framing (the paper's "minimum read length"
	// filter).
	DefaultMinSeqLen = fastq.DefaultMinLen
	// DefaultResolvedThreshold is the default number of trustworthy
	// records a block must yield to count as record-resolved
	// (Section VI-B).
	DefaultResolvedThreshold = framing.DefaultResolvedThreshold
)

// Framer is a pluggable record framing: how to find a record boundary
// inside partially resolved text, how to split resolved text into
// records, and when a decoded block counts as record-resolved. The
// implementations shipped with the package are FASTQFraming (the
// paper's DNA grammar), NewlineFraming (logs, JSONL), WARCFraming
// (web archives) and LengthPrefixedFraming (binary records); see each
// for whether index-free access is viable under it.
type Framer = framing.Framer

// FramedRecord is a record located by a Framer within scanned text
// (offsets relative to that text).
type FramedRecord = framing.Record

// The shipped framings. Each is a value type safe for concurrent use.
type (
	// FASTQFraming extracts DNA-like segments with the Appendix X-B
	// grammar — the default framing, byte-for-byte identical to the
	// original fqgz pipeline.
	FASTQFraming = framing.FASTQ
	// NewlineFraming frames newline-delimited records (log lines;
	// JSONL with ValidateJSON set). Records overlapping undetermined
	// bytes are never emitted.
	NewlineFraming = framing.Newline
	// WARCFraming frames WARC/1.x web-archive records.
	WARCFraming = framing.WARC
	// LengthPrefixedFraming frames binary length-prefixed records
	// (index-free access requires its Magic marker).
	LengthPrefixedFraming = framing.LengthPrefixed
)

// RandomAccessOptions tunes RandomAccess.
type RandomAccessOptions struct {
	// MaxOutput bounds how many decompressed bytes to produce
	// (0 = decode to the end of the member).
	MaxOutput int64
	// Framer selects the record framing applied to the partially
	// resolved text. nil selects FASTQFraming{MinLen: MinSeqLen} — the
	// original DNA pipeline.
	Framer Framer
	// MinSeqLen is the minimum extracted-sequence length used by the
	// default FASTQ framing (0 selects DefaultMinSeqLen).
	//
	// Deprecated: set Framer to FASTQFraming{MinLen: n} instead. The
	// field is consulted only when Framer is nil.
	MinSeqLen int
	// ResolvedThreshold is the number of trustworthy records a block
	// needs to count as record-resolved (0 selects
	// DefaultResolvedThreshold).
	ResolvedThreshold int
}

// Record is one record recovered from random-access output (or yielded
// by a File.Records scan).
type Record struct {
	// Offset is the byte position within the scanned text where the
	// record begins — for RandomAccessResult, within Text; for a
	// RecordScanner, the absolute decompressed offset.
	Offset int64
	// Data is the record's content (framing overhead excluded). It
	// aliases the scanned text; it is valid until that text is.
	Data []byte
	// Undetermined counts unresolved ('?') bytes within Data. Only the
	// FASTQ framing emits records with Undetermined > 0.
	Undetermined int
}

// Unambiguous reports whether the record is fully determined.
func (r Record) Unambiguous() bool { return r.Undetermined == 0 }

// Sequence is one DNA-like segment extracted from random-access
// output.
//
// Deprecated: Sequence survives for the FASTQ-specific surface;
// framer-neutral callers read RandomAccessResult.Records.
type Sequence struct {
	// Offset is the byte position within SuffixText where the
	// sequence begins.
	Offset int
	Seq    []byte
	// Undetermined counts '?' characters within Seq.
	Undetermined int
}

// Unambiguous reports whether the sequence is fully determined.
func (s Sequence) Unambiguous() bool { return s.Undetermined == 0 }

// RandomAccessResult is the outcome of decompressing from an arbitrary
// location with an undetermined context.
type RandomAccessResult struct {
	// BlockBit is the payload bit offset of the block where decoding
	// started (the first confirmed block at/after the requested
	// offset).
	BlockBit int64
	// Text is the decompressed suffix with unresolved characters shown
	// as Undetermined ('?').
	Text []byte
	// Blocks are the decoded block boundaries (offsets into Text).
	Blocks []Block
	// Records holds every record the framing recovered from Text, in
	// order.
	Records []Record
	// Sequences holds every extracted DNA-like segment, in order. It
	// is populated only under the FASTQ framing (the default), where
	// it mirrors Records.
	//
	// Deprecated: read Records.
	Sequences []Sequence
	// FirstResolvedBlock is the index into Blocks of the first
	// record-resolved block, or -1 if none was found. DelayBytes is
	// the number of decompressed bytes before it ("delay to
	// sequence-resolved block" in Table I).
	FirstResolvedBlock int
	DelayBytes         int64
}

// UnambiguousAfterResolved returns the Table I statistic: among
// records that begin at or after the first record-resolved block, the
// fraction without undetermined characters. ok is false when no
// record-resolved block exists or no records follow it.
func (r *RandomAccessResult) UnambiguousAfterResolved() (frac float64, ok bool) {
	if r.FirstResolvedBlock < 0 {
		return 0, false
	}
	start := r.Blocks[r.FirstResolvedBlock].OutStart
	total, clean := 0, 0
	for _, rec := range r.Records {
		if rec.Offset < start {
			continue
		}
		total++
		if rec.Unambiguous() {
			clean++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(clean) / float64(total), true
}

// RandomAccess decompresses a gzip-compressed file starting at an
// arbitrary compressed byte offset, using a fully undetermined 32 KiB
// context, and recovers records from the partially resolved output
// (the paper's fqgz prototype — Sections IV, VI-A, VI-B and Appendix
// X-B — generalised over pluggable record framings).
func RandomAccess(gz []byte, fromByte int64, o RandomAccessOptions) (*RandomAccessResult, error) {
	f, err := NewFileBytes(gz, FileOptions{})
	if err != nil {
		return nil, err
	}
	return f.RandomAccessAt(fromByte, o)
}

// framer resolves the options' framing (nil selects the original
// FASTQ pipeline).
func (o RandomAccessOptions) framer() Framer {
	if o.Framer != nil {
		return o.Framer
	}
	return FASTQFraming{MinLen: o.MinSeqLen}
}

// RandomAccessAt is RandomAccess over the File's byte source: the
// paper's index-free access path, reading only the compressed extent
// it decodes (plus geometric growth slack for non-slice sources)
// rather than the whole file. It touches only the File's immutable
// snapshot through a private window, so it is safe for concurrent use
// alongside any other File method.
func (f *File) RandomAccessAt(fromByte int64, o RandomAccessOptions) (*RandomAccessResult, error) {
	fr := o.framer()
	if o.ResolvedThreshold == 0 {
		o.ResolvedThreshold = DefaultResolvedThreshold
	}

	// One window serves both halves of the access: the brute-force
	// block sync and the undetermined-context decode that follows. Its
	// initial extent is sized to the requested output (text compresses
	// to no more than its own size) so a bounded read loads a bounded
	// compressed extent; the decode grows it when it falls short.
	from := fromByte
	if from < f.hdrLen {
		from = f.hdrLen
	}
	if from > f.size {
		return nil, fmt.Errorf("pugz: random access at byte %d: %w", fromByte, ErrNotFound)
	}
	initial := o.MaxOutput + minWindowLoad
	w, err := f.openWindow(from, initial)
	if err != nil {
		return nil, err
	}
	relBit, err := findInWindow(w, 0)
	if err != nil {
		return nil, fmt.Errorf("pugz: random access at byte %d: %w", fromByte, err)
	}
	rebase := (w.base - f.hdrLen) * 8
	bit := rebase + relBit

	var res *tracked.Result
	for {
		res, err = tracked.DecodeFrom(w.data, relBit, tracked.DecodeOptions{
			MaxOutput:   clampInt(o.MaxOutput),
			RecordSpans: true,
		})
		if err == nil {
			break
		}
		if grown, gerr := w.grow(); gerr != nil {
			return nil, gerr
		} else if grown {
			continue
		}
		return nil, err
	}

	out := &RandomAccessResult{
		BlockBit:           bit,
		Text:               tracked.Narrow(res.Out),
		FirstResolvedBlock: -1,
		DelayBytes:         -1,
	}
	res.Release()
	for _, s := range res.Spans {
		out.Blocks = append(out.Blocks, Block{
			StartBit: rebase + s.Event.StartBit,
			EndBit:   rebase + s.EndBit,
			Type:     s.Event.Type.String(),
			Final:    s.Event.Final,
			OutStart: s.OutStart,
			OutEnd:   s.OutEnd,
		})
	}

	// The end of the decoded text is a true end of stream only when
	// the member's final block was reached and nothing but its trailer
	// fits behind it (a shorter remainder cannot hold another member):
	// then a framing may accept an unterminated final record. Framings
	// otherwise treat the cut as unresolved — a record straddling into
	// the next member or past MaxOutput is not a record.
	endByte := w.base + (res.EndBit+7)/8
	atEnd := res.Final && f.size-endByte-gzipTrailerLen < gzipMinMemberLen

	for _, rec := range fr.Records(out.Text, false, atEnd) {
		out.Records = append(out.Records, Record{
			Offset:       int64(rec.Start),
			Data:         rec.Bytes(out.Text),
			Undetermined: rec.Holes,
		})
	}
	if _, isFASTQ := fr.(FASTQFraming); isFASTQ {
		out.Sequences = make([]Sequence, 0, len(out.Records))
		for _, rec := range out.Records {
			out.Sequences = append(out.Sequences, Sequence{
				Offset:       int(rec.Offset),
				Seq:          rec.Data,
				Undetermined: rec.Undetermined,
			})
		}
	}

	for i, b := range out.Blocks {
		end := b.OutEnd
		if end > int64(len(out.Text)) {
			end = int64(len(out.Text))
		}
		if b.OutStart >= end {
			continue
		}
		if fr.Resolved(out.Text[b.OutStart:end], o.ResolvedThreshold) {
			out.FirstResolvedBlock = i
			out.DelayBytes = b.OutStart
			break
		}
	}
	return out, nil
}

// gzip framing sizes consulted when judging whether decoded text ends
// at a true end of stream: an 8-byte member trailer, and the smallest
// possible following member (10-byte header + 2-byte empty stored
// block + trailer).
const (
	gzipTrailerLen   = 8
	gzipMinMemberLen = 20
)

// clampInt narrows an int64 byte bound to the int the tracked decoder
// takes, saturating instead of wrapping.
func clampInt(v int64) int {
	const maxInt = int64(^uint(0) >> 1)
	if v > maxInt {
		return int(maxInt)
	}
	if v < 0 {
		return 0
	}
	return int(v)
}
