package pugz

import (
	"fmt"

	"repro/internal/fastq"
	"repro/internal/tracked"
)

// Undetermined is the byte standing in for any unresolved character in
// random-access output ('?' throughout the paper's figures).
const Undetermined = tracked.UndeterminedByte

// RandomAccessOptions tunes RandomAccess.
type RandomAccessOptions struct {
	// MaxOutput bounds how many decompressed bytes to produce
	// (0 = decode to the end of the member).
	MaxOutput int
	// MinSeqLen is the minimum extracted-sequence length (default 32).
	MinSeqLen int
	// ResolvedThreshold is the number of clean sequences a block needs
	// to count as sequence-resolved (default 4).
	ResolvedThreshold int
}

// Sequence is one DNA-like segment extracted from random-access
// output.
type Sequence struct {
	// Offset is the byte position within SuffixText where the
	// sequence begins.
	Offset int
	Seq    []byte
	// Undetermined counts '?' characters within Seq.
	Undetermined int
}

// Unambiguous reports whether the sequence is fully determined.
func (s Sequence) Unambiguous() bool { return s.Undetermined == 0 }

// RandomAccessResult is the outcome of decompressing from an arbitrary
// location with an undetermined context.
type RandomAccessResult struct {
	// BlockBit is the payload bit offset of the block where decoding
	// started (the first confirmed block at/after the requested
	// offset).
	BlockBit int64
	// Text is the decompressed suffix with unresolved characters shown
	// as Undetermined ('?').
	Text []byte
	// Blocks are the decoded block boundaries (offsets into Text).
	Blocks []Block
	// Sequences holds every extracted DNA-like segment, in order.
	Sequences []Sequence
	// FirstResolvedBlock is the index into Blocks of the first
	// sequence-resolved block, or -1 if none was found. DelayBytes is
	// the number of decompressed bytes before it ("delay to
	// sequence-resolved block" in Table I).
	FirstResolvedBlock int
	DelayBytes         int64
}

// UnambiguousAfterResolved returns the Table I statistic: among
// sequences that begin at or after the first sequence-resolved block,
// the fraction without undetermined characters. ok is false when no
// sequence-resolved block exists or no sequences follow it.
func (r *RandomAccessResult) UnambiguousAfterResolved() (frac float64, ok bool) {
	if r.FirstResolvedBlock < 0 {
		return 0, false
	}
	start := r.Blocks[r.FirstResolvedBlock].OutStart
	total, clean := 0, 0
	for _, s := range r.Sequences {
		if int64(s.Offset) < start {
			continue
		}
		total++
		if s.Unambiguous() {
			clean++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(clean) / float64(total), true
}

// RandomAccess decompresses a gzip-compressed FASTQ file starting at
// an arbitrary compressed byte offset, using a fully undetermined
// 32 KiB context, and extracts DNA-like sequences from the partially
// resolved output (the paper's fqgz prototype: Sections IV, VI-A,
// VI-B and Appendix X-B).
func RandomAccess(gz []byte, fromByte int64, o RandomAccessOptions) (*RandomAccessResult, error) {
	f, err := NewFileBytes(gz, FileOptions{})
	if err != nil {
		return nil, err
	}
	return f.RandomAccessAt(fromByte, o)
}

// RandomAccessAt is RandomAccess over the File's byte source: the
// paper's index-free access path, reading only the compressed extent
// it decodes (plus geometric growth slack for non-slice sources)
// rather than the whole file. It touches only the File's immutable
// snapshot through a private window, so it is safe for concurrent use
// alongside any other File method.
func (f *File) RandomAccessAt(fromByte int64, o RandomAccessOptions) (*RandomAccessResult, error) {
	if o.MinSeqLen == 0 {
		o.MinSeqLen = fastq.DefaultMinLen
	}
	if o.ResolvedThreshold == 0 {
		o.ResolvedThreshold = fastq.SequenceResolvedThreshold
	}

	// One window serves both halves of the access: the brute-force
	// block sync and the undetermined-context decode that follows. Its
	// initial extent is sized to the requested output (text compresses
	// to no more than its own size) so a bounded read loads a bounded
	// compressed extent; the decode grows it when it falls short.
	from := fromByte
	if from < f.hdrLen {
		from = f.hdrLen
	}
	if from > f.size {
		return nil, fmt.Errorf("pugz: random access at byte %d: %w", fromByte, ErrNotFound)
	}
	initial := int64(o.MaxOutput) + minWindowLoad
	w, err := f.openWindow(from, initial)
	if err != nil {
		return nil, err
	}
	relBit, err := findInWindow(w, 0)
	if err != nil {
		return nil, fmt.Errorf("pugz: random access at byte %d: %w", fromByte, err)
	}
	rebase := (w.base - f.hdrLen) * 8
	bit := rebase + relBit

	var res *tracked.Result
	for {
		res, err = tracked.DecodeFrom(w.data, relBit, tracked.DecodeOptions{
			MaxOutput:   o.MaxOutput,
			RecordSpans: true,
		})
		if err == nil {
			break
		}
		if grown, gerr := w.grow(); gerr != nil {
			return nil, gerr
		} else if grown {
			continue
		}
		return nil, err
	}

	out := &RandomAccessResult{
		BlockBit:           bit,
		Text:               tracked.Narrow(res.Out),
		FirstResolvedBlock: -1,
		DelayBytes:         -1,
	}
	res.Release()
	for _, s := range res.Spans {
		out.Blocks = append(out.Blocks, Block{
			StartBit: rebase + s.Event.StartBit,
			EndBit:   rebase + s.EndBit,
			Type:     s.Event.Type.String(),
			Final:    s.Event.Final,
			OutStart: s.OutStart,
			OutEnd:   s.OutEnd,
		})
	}

	exOpts := fastq.ExtractOptions{MinLen: o.MinSeqLen}
	for _, seg := range fastq.Extract(out.Text, exOpts) {
		out.Sequences = append(out.Sequences, Sequence{
			Offset:       seg.Start,
			Seq:          seg.Seq(out.Text),
			Undetermined: seg.Undetermined,
		})
	}

	for i, b := range out.Blocks {
		end := b.OutEnd
		if end > int64(len(out.Text)) {
			end = int64(len(out.Text))
		}
		if b.OutStart >= end {
			continue
		}
		if fastq.BlockResolved(out.Text[b.OutStart:end], exOpts, o.ResolvedThreshold) {
			out.FirstResolvedBlock = i
			out.DelayBytes = b.OutStart
			break
		}
	}
	return out, nil
}
