package pugz

// Differential tests for the tail-only skip mode (PR 5): every surface
// that decodes through the tail sinks — Size() measuring passes, deep
// unindexed ReadAt (the parallel two-pass skip), and the skip-mode
// streaming index build — must be byte-identical to the full symbolic
// path across compression levels, stored-block-heavy (level 0) input,
// and multi-member files.

import (
	"bytes"
	"io"
	"testing"
)

// skipCorpora returns named gzip corpora over the same logical data:
// levels 1/6/9, a stored-block-heavy level-0 file, and a multi-member
// concatenation. The returned map values share cached backing; tests
// must not mutate them.
func skipCorpora(t *testing.T) (map[string][]byte, map[string][]byte) {
	t.Helper()
	const reads, seed = 9000, 711
	data := genFastq(reads, seed)
	second := genFastq(2000, 712)
	gz := map[string][]byte{
		"level0": gzCorpus(t, reads, seed, 0),
		"level1": gzCorpus(t, reads, seed, 1),
		"level6": gzCorpus(t, reads, seed, 6),
		"level9": gzCorpus(t, reads, seed, 9),
	}
	gz["multimember"] = append(append([]byte{}, gz["level6"]...), gzCorpus(t, 2000, 712, 6)...)
	want := map[string][]byte{}
	for name := range gz {
		want[name] = data
	}
	want["multimember"] = append(append([]byte{}, data...), second...)
	return gz, want
}

// TestSkipModeSizeAndDeepReadAt: the tail-only measuring pass behind
// Size() and the tail-only skip behind a deep unindexed ReadAt must
// agree byte-for-byte with the fully translated stream.
func TestSkipModeSizeAndDeepReadAt(t *testing.T) {
	gzs, wants := skipCorpora(t)
	for name, gz := range gzs {
		t.Run(name, func(t *testing.T) {
			want := wants[name]
			f, err := NewFileBytes(gz, FileOptions{
				Threads:              3,
				BatchCompressedBytes: 192 << 10,
				MinChunk:             16 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// Deep seek first: the skip path runs before any size pass has
			// primed checkpoints.
			off := int64(len(want)) * 85 / 100
			p := make([]byte, 48<<10)
			if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
				t.Fatalf("deep ReadAt(%d): %v", off, err)
			}
			if !bytes.Equal(p, want[off:off+int64(len(p))]) {
				t.Fatalf("deep ReadAt(%d): output differs from full decode", off)
			}
			size, err := f.Size()
			if err != nil {
				t.Fatal(err)
			}
			if size != int64(len(want)) {
				t.Fatalf("Size = %d, want %d", size, len(want))
			}
			// And a read crossing the very end (multi-member: crossing the
			// member boundary is covered by off landing in member one for
			// the concatenated corpus above).
			tail := make([]byte, 4096)
			if _, err := f.ReadAt(tail, size-int64(len(tail))); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(tail, want[size-int64(len(tail)):]) {
				t.Fatal("tail read mismatch")
			}
		})
	}
}

// TestSkipModeDeepSeekTailBatches: a deep seek across many small
// batches — the geometry where the pipeline's skippability estimate
// switches pass 1 to the tail-only sinks for the clearly-skippable
// middle segments while the first and boundary segments decode in
// full. The mixed sequence must stay byte-exact and still harvest
// usable auto-index restart points from the tail segments.
func TestSkipModeDeepSeekTailBatches(t *testing.T) {
	data := genFastq(40000, 31)
	gz := gzCorpus(t, 40000, 31, 6)
	f, err := NewFileBytes(gz, FileOptions{
		Threads:              3,
		BatchCompressedBytes: 64 << 10,
		MinChunk:             8 << 10,
		AutoIndexSpacing:     256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(len(data)) * 9 / 10
	p := make([]byte, 32<<10)
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		t.Fatalf("deep ReadAt(%d): %v", off, err)
	}
	if !bytes.Equal(p, data[off:off+int64(len(p))]) {
		t.Fatalf("deep ReadAt(%d): mismatch", off)
	}
	if f.Checkpoints() == 0 {
		t.Fatal("tail-mode deep seek harvested no restart points")
	}
	// A second, earlier deep seek must resume from a harvested restart
	// point and stay exact.
	off2 := off - 1<<20
	if _, err := f.ReadAt(p, off2); err != nil && err != io.EOF {
		t.Fatalf("second ReadAt(%d): %v", off2, err)
	}
	if !bytes.Equal(p, data[off2:off2+int64(len(p))]) {
		t.Fatalf("second ReadAt(%d): mismatch", off2)
	}
}

// TestSkipModeIndexBytes: the skip-mode streaming index build must
// marshal byte-identically to the sequential zran reference on every
// corpus shape (both index the first member).
func TestSkipModeIndexBytes(t *testing.T) {
	gzs, _ := skipCorpora(t)
	const spacing = 160 << 10
	for name, gz := range gzs {
		t.Run(name, func(t *testing.T) {
			want := slurpIndexBlob(t, gz, spacing)
			ix, err := NewIndexFromReader(bytes.NewReader(gz), spacing, StreamOptions{
				Threads:              3,
				BatchCompressedBytes: 192 << 10,
				MinChunk:             16 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("skip-mode index differs from sequential build (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}
