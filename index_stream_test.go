package pugz

// Tests for the streaming index construction path and the auto-indexing
// parallel-skip File cursor (the PR-4 surfaces). The identity property
// — a stream-built index marshals to the same bytes as the sequential
// zran build — is what lets BuildIndex delegate to the pipeline without
// changing any on-disk side-car.

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gzindex"
	"repro/internal/gzipx"
)

// slurpIndexBlob is the sequential whole-file reference build (the
// pre-streaming BuildIndex): one recorded decode of the first member's
// payload, marshalled.
func slurpIndexBlob(t *testing.T, gz []byte, spacing int64) []byte {
	t.Helper()
	m, err := gzipx.ParseHeader(gz)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := gzindex.Build(gz[m.HeaderLen:], spacing)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := inner.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestStreamIndexByteIdenticalToSlurp: the acceptance property — the
// streaming parallel build must marshal byte-identically to the
// sequential slurp build, across compression levels, thread counts,
// batch sizes, and multi-member corpora (both index the first member).
func TestStreamIndexByteIdenticalToSlurp(t *testing.T) {
	corpora := map[string][]byte{}
	for _, level := range []int{1, 6, 9} {
		corpora[map[int]string{1: "level1", 6: "level6", 9: "level9"}[level]] = gzCorpus(t, 9000, 711, level)
	}
	second := gzCorpus(t, 2000, 712, 6)
	corpora["multimember"] = append(append([]byte{}, corpora["level6"]...), second...)

	const spacing = 128 << 10
	for name, gz := range corpora {
		t.Run(name, func(t *testing.T) {
			want := slurpIndexBlob(t, gz, spacing)
			for _, cfg := range []StreamOptions{
				{Threads: 1},
				{Threads: 4, BatchCompressedBytes: 96 << 10, MinChunk: 8 << 10},
				{Threads: 3, BatchCompressedBytes: 512 << 10, MinChunk: 16 << 10},
			} {
				ix, err := NewIndexFromReader(bytes.NewReader(gz), spacing, cfg)
				if err != nil {
					t.Fatalf("threads=%d batch=%d: %v", cfg.Threads, cfg.BatchCompressedBytes, err)
				}
				got, err := ix.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("threads=%d batch=%d: stream-built index differs from slurp build (%d vs %d bytes)",
						cfg.Threads, cfg.BatchCompressedBytes, len(got), len(want))
				}
			}
			// And the public wrapper is the same build.
			ix, err := BuildIndex(gz, spacing)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("BuildIndex wrapper differs from slurp build")
			}
		})
	}
}

// TestIndexFromReaderBoundedMemory: index construction over a pipe — the
// stream never exists as one slice on the consumer side — must keep the
// compressed residency bounded by the batch size, not the stream size,
// while still producing a usable index.
func TestIndexFromReaderBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream")
	}
	data := genFastq(60000, 713)
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, 6)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	gz := buf.Bytes()

	// Feed the stream through a pipe in small writes so the builder only
	// ever sees an io.Reader trickle, never the slice.
	pr, pw := io.Pipe()
	go func() {
		for o := 0; o < len(gz); o += 64 << 10 {
			end := o + 64<<10
			if end > len(gz) {
				end = len(gz)
			}
			if _, err := pw.Write(gz[o:end]); err != nil {
				return
			}
		}
		pw.Close()
	}()

	const batch = 256 << 10
	ix, st, err := buildIndexStream(pr, 256<<10, StreamOptions{
		Threads:              4,
		BatchCompressedBytes: batch,
		MinChunk:             16 << 10,
		ReadSize:             64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != int64(len(data)) {
		t.Fatalf("index OutSize %d, want %d", ix.Size(), len(data))
	}
	if ix.Checkpoints() < 10 {
		t.Fatalf("only %d checkpoints", ix.Checkpoints())
	}
	const slack = 256<<10 + 3*64<<10 // pipeline batchSlack + prefetch reads
	if st.MaxBufferedCompressed > batch+slack {
		t.Fatalf("peak compressed residency %d exceeds batch-derived bound %d",
			st.MaxBufferedCompressed, batch+slack)
	}
	// The index works against the same bytes: an exact read near the
	// end, inflated straight from a checkpoint.
	p := make([]byte, 16<<10)
	off := int64(len(data)) - 100<<10
	if _, err := ix.ReadAt(gz, p, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data[off:off+int64(len(p))]) {
		t.Fatal("checkpoint read mismatch")
	}
	t.Logf("stream indexed with peak residency %d over %d batches", st.MaxBufferedCompressed, st.Batches)
}

// TestFileBuildIndex: the File-native streaming build must attach the
// index (bounding subsequent reads) and match the whole-file build.
func TestFileBuildIndex(t *testing.T) {
	data := genFastq(15000, 71)
	gz := gzCorpus(t, 15000, 71, 6)
	src := &countingReaderAt{data: gz}
	f, err := NewFile(src, int64(len(gz)), FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ix, err := f.BuildIndex(256 << 10)
	if err != nil {
		t.Fatal(err)
	}
	wantIx, err := BuildIndex(gz, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ix.Marshal()
	want, _ := wantIx.Marshal()
	if !bytes.Equal(got, want) {
		t.Fatal("File.BuildIndex differs from BuildIndex")
	}
	// Attached: a read near the end must inflate from a checkpoint, not
	// re-decode the file (the build itself read ~everything once).
	afterBuild := src.read
	off := int64(len(data)) - 80<<10
	p := make([]byte, 32<<10)
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data[off:off+int64(len(p))]) {
		t.Fatal("indexed read mismatch")
	}
	if src.read-afterBuild > int64(len(gz))/2 {
		t.Fatalf("indexed read loaded %d more compressed bytes", src.read-afterBuild)
	}
	// Size is known without another pass.
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", size, len(data))
	}
}

// countingReaderAt counts bytes served and tracks the lowest offset
// touched since the last resetMin, like file_test.go's tracking reader
// but usable from the internal test package.
type countingReaderAt struct {
	data   []byte
	mu     sync.Mutex
	read   int64
	minOff int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(c.data)) {
		return 0, io.EOF
	}
	n := copy(p, c.data[off:])
	c.mu.Lock()
	c.read += int64(n)
	if off < c.minOff {
		c.minOff = off
	}
	c.mu.Unlock()
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (c *countingReaderAt) resetMin() {
	c.mu.Lock()
	c.minOff = int64(len(c.data))
	c.mu.Unlock()
}

func (c *countingReaderAt) min() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.minOff
}

// TestFileAutoIndexDeepSeeks: a deep unindexed seek must harvest
// restart points, and a second deep seek must resume from one instead
// of re-decoding the file from the start.
func TestFileAutoIndexDeepSeeks(t *testing.T) {
	data := genFastq(20000, 8)
	gz := gzCorpus(t, 20000, 8, 6)
	src := &countingReaderAt{data: gz}
	f, err := NewFile(src, int64(len(gz)), FileOptions{
		Threads:              3,
		BatchCompressedBytes: 256 << 10,
		MinChunk:             16 << 10,
		AutoIndexSpacing:     128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	check := func(off int64) {
		t.Helper()
		p := make([]byte, 4096)
		if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(p, data[off:off+4096]) {
			t.Fatalf("ReadAt(%d): mismatch", off)
		}
	}

	deep := int64(len(data)) * 8 / 10
	check(deep)
	if f.Checkpoints() == 0 {
		t.Fatal("deep seek retained no checkpoints")
	}

	// A second deep seek, behind the cursor: without the auto-index this
	// re-decodes from the start of the file; with it, the cursor resumes
	// from a retained checkpoint near the target — so the source must
	// never be touched anywhere near its beginning again.
	src.resetMin()
	check(deep - 2<<20)
	if lowest := src.min(); lowest < int64(len(gz))/4 {
		t.Fatalf("second deep seek read from compressed offset %d (of %d): cursor restarted near the file start instead of a checkpoint", lowest, len(gz))
	}
}

// TestFileDeepSeekThenAscending: the pattern the two-pass skip must not
// break — one deep seek, then an ascending scan from there (cursor
// reuse), then a read past EOF.
func TestFileDeepSeekThenAscending(t *testing.T) {
	data := genFastq(15000, 71)
	gz := gzCorpus(t, 15000, 71, 6)
	f, err := NewFileBytes(gz, FileOptions{
		Threads:              2,
		BatchCompressedBytes: 256 << 10,
		MinChunk:             16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	off := int64(len(data)) / 2
	p := make([]byte, 8192)
	for off+int64(len(p)) <= int64(len(data)) {
		if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(p, data[off:off+int64(len(p))]) {
			t.Fatalf("ReadAt(%d): mismatch", off)
		}
		off += 64 << 10 // ascending with gaps: cursor discards, no reopen
	}
	if _, err := f.ReadAt(p, int64(len(data))+10); err != io.EOF {
		t.Fatalf("past-end read: err=%v, want io.EOF", err)
	}
	// The size must not have been poisoned by the past-end skip target.
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", size, len(data))
	}
}

// TestFileConcurrentReadAtAutoIndex: concurrent positional reads while
// auto-indexing is in flight — the checkpoint store is written by the
// cursor's worker goroutine while other readers query it. Run under
// -race (the tier-1 gate does).
func TestFileConcurrentReadAtAutoIndex(t *testing.T) {
	data := genFastq(15000, 71)
	gz := gzCorpus(t, 15000, 71, 6)
	f, err := NewFileBytes(gz, FileOptions{
		Threads:              2,
		BatchCompressedBytes: 256 << 10,
		MinChunk:             16 << 10,
		AutoIndexSpacing:     128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			p := make([]byte, 4096)
			for i := 0; i < 6; i++ {
				off := rng.Int63n(int64(len(data)) - int64(len(p)))
				if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
					errc <- err
					return
				}
				if !bytes.Equal(p, data[off:off+int64(len(p))]) {
					errc <- io.ErrUnexpectedEOF
					return
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("concurrent ReadAt: %v", err)
	default:
	}
}
