package pugz

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"

	"repro/internal/fastq"
)

func TestStreamingReaderMatchesWhole(t *testing.T) {
	data := genFastq(40000, 31)
	for _, level := range []int{1, 6, 9} {
		gz := gzCorpus(t, 40000, 31, level)
		r, err := NewReaderBytes(gz, StreamOptions{
			Threads:              4,
			BatchCompressedBytes: 256 << 10, // force many batches
			MinChunk:             16 << 10,
			VerifyChecksums:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("level %d: stream output mismatch (%d vs %d bytes)", level, len(out), len(data))
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamingReaderMultiMember(t *testing.T) {
	a := genFastq(8000, 32)
	b := genFastq(8000, 33)
	ga := gzCorpus(t, 8000, 32, 6)
	gb := gzCorpus(t, 8000, 33, 1)
	gz := append(append([]byte{}, ga...), gb...)
	r, err := NewReaderBytes(gz, StreamOptions{Threads: 3, BatchCompressedBytes: 128 << 10, MinChunk: 8 << 10, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, a...), b...)
	if !bytes.Equal(out, want) {
		t.Fatal("multi-member stream mismatch")
	}
}

func TestStreamingReaderSmallReads(t *testing.T) {
	data := genFastq(4000, 34)
	gz := gzCorpus(t, 4000, 34, 6)
	r, err := NewReaderBytes(gz, StreamOptions{Threads: 2, BatchCompressedBytes: 64 << 10, MinChunk: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out bytes.Buffer
	buf := make([]byte, 137) // deliberately odd read size
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("small-read stream mismatch")
	}
	// Reading after EOF keeps returning EOF.
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("post-EOF read: %v", err)
	}
}

func TestStreamingReaderEarlyClose(t *testing.T) {
	data := genFastq(30000, 35)
	gz, _ := Compress(data, 6)
	r, err := NewReaderBytes(gz, StreamOptions{Threads: 4, BatchCompressedBytes: 64 << 10, MinChunk: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is fine.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingReaderReadAfterClose pins the Read-after-Close error
// contract: an early Close truncates the stream, so later Reads must
// report ErrReaderClosed (matching os.ErrClosed) — never a clean
// io.EOF a consumer could mistake for a complete stream. A Reader that
// already delivered its whole stream keeps reporting io.EOF.
func TestStreamingReaderReadAfterClose(t *testing.T) {
	gz := gzCorpus(t, 20000, 38, 6)

	t.Run("early-close", func(t *testing.T) {
		r, err := NewReaderBytes(gz, StreamOptions{Threads: 2, BatchCompressedBytes: 64 << 10, MinChunk: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1000)
		if _, err := r.Read(buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		_, err = r.Read(buf)
		if !errors.Is(err, ErrReaderClosed) {
			t.Fatalf("Read after Close: %v, want ErrReaderClosed", err)
		}
		if !errors.Is(err, os.ErrClosed) {
			t.Fatalf("ErrReaderClosed should match os.ErrClosed, got %v", err)
		}
		if err == io.EOF {
			t.Fatal("truncated-by-Close stream reported as clean EOF")
		}
		// The error is sticky and Close stays idempotent.
		if _, err := r.Read(buf); !errors.Is(err, ErrReaderClosed) {
			t.Fatalf("second Read after Close: %v", err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("close-before-first-read", func(t *testing.T) {
		r, err := NewReaderBytes(gz, StreamOptions{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(make([]byte, 16)); !errors.Is(err, ErrReaderClosed) {
			t.Fatalf("Read on closed reader: %v, want ErrReaderClosed", err)
		}
	})

	t.Run("complete-stream-keeps-eof", func(t *testing.T) {
		r, err := NewReaderBytes(gz, StreamOptions{Threads: 2, BatchCompressedBytes: 64 << 10, MinChunk: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(make([]byte, 16)); err != io.EOF {
			t.Fatalf("Read after EOF+Close: %v, want io.EOF", err)
		}
	})
}

func TestStreamingReaderChecksumFailure(t *testing.T) {
	data := genFastq(6000, 36)
	gz, _ := Compress(data, 6)
	gz[len(gz)-6] ^= 0xff // corrupt stored CRC
	r, err := NewReaderBytes(gz, StreamOptions{Threads: 2, VerifyChecksums: true, BatchCompressedBytes: 64 << 10, MinChunk: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = io.ReadAll(r)
	if err == nil {
		t.Fatal("expected checksum error")
	}
}

func TestStreamingReaderBadHeader(t *testing.T) {
	if _, err := NewReaderBytes([]byte("not a gzip file"), StreamOptions{}); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestStreamingReaderTinyBatches(t *testing.T) {
	// Batch size below the floor still works (clamped to 64 KiB).
	data := fastq.Generate(fastq.GenOptions{Reads: 3000, Seed: 37})
	gz, _ := Compress(data, 6)
	r, err := NewReaderBytes(gz, StreamOptions{Threads: 2, BatchCompressedBytes: 1, MinChunk: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("tiny-batch mismatch")
	}
}
