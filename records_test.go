package pugz_test

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"testing"

	pugz "repro"
	"repro/internal/blockfind"
	"repro/internal/fastq"
	"repro/internal/framing"
)

// This file is the differential suite for the record-framing layer:
// index-free record extraction (RandomAccess with a Framer) and exact
// record scans (File.Records) over synthetic multi-member,
// stored-block-heavy JSONL/WARC corpora, verified against a
// stdlib-gunzip + reframe oracle.

// gunzipOracle decompresses gz with the standard library (multistream).
func gunzipOracle(t testing.TB, gz []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return plain
}

// multiMemberGz splits data into len(levels) consecutive extents and
// compresses each as an independent gzip member at its level — the
// rotated-log / web-archive shape (level 0 members are all stored
// blocks). It returns the file and the per-member plaintext extent.
func multiMemberGz(t testing.TB, data []byte, levels []int) ([]byte, int) {
	t.Helper()
	per := (len(data) + len(levels) - 1) / len(levels)
	var gz []byte
	for i, l := range levels {
		lo := i * per
		hi := lo + per
		if hi > len(data) {
			hi = len(data)
		}
		m, err := pugz.Compress(data[lo:hi], l)
		if err != nil {
			t.Fatal(err)
		}
		gz = append(gz, m...)
	}
	return gz, per
}

// oracleIndex maps every oracle record's content to its position, so a
// recovered record can be located in the true stream. The generators
// embed unique sequence numbers, so contents are unique.
func oracleIndex(t testing.TB, plain []byte, fr pugz.Framer) ([]pugz.FramedRecord, map[string]int) {
	t.Helper()
	recs := fr.Records(plain, true, true)
	byContent := make(map[string]int, len(recs))
	for i, r := range recs {
		if prev, dup := byContent[string(r.Bytes(plain))]; dup {
			t.Fatalf("oracle records %d and %d not unique", prev, i)
		}
		byContent[string(r.Bytes(plain))] = i
	}
	return recs, byContent
}

func TestRandomAccessRecordsDifferential(t *testing.T) {
	cases := []struct {
		name   string
		data   []byte
		framer pugz.Framer
	}{
		{"jsonl", framing.GenJSONL(12000, 11), pugz.NewlineFraming{ValidateJSON: true}},
		{"log", framing.GenLog(16000, 12), pugz.NewlineFraming{}},
		{"warc", framing.GenWARC(1500, 13), pugz.WARCFraming{}},
	}
	levelSets := [][]int{
		{0, 0, 0, 0},    // stored-block-heavy throughout
		{0, 1, 6, 9},    // mixed members, stored first
		{6, 0, 9, 0, 1}, // stored members interleaved
		{1, 1},
	}
	for _, tc := range cases {
		for _, levels := range levelSets {
			gz, _ := multiMemberGz(t, tc.data, levels)
			_, byContent := oracleIndex(t, gunzipOracle(t, gz), tc.framer)
			for _, off := range []int64{0, int64(len(gz)) / 5, int64(len(gz)) / 2, int64(len(gz)) * 4 / 5} {
				res, err := pugz.RandomAccess(gz, off, pugz.RandomAccessOptions{Framer: tc.framer})
				if err != nil {
					// Near the tail of a sparsely-blocked stream the
					// last block start can precede the offset — sync
					// legitimately fails there (paper Section V).
					if errors.Is(err, blockfind.ErrNotFound) && off > int64(len(gz))*3/4 {
						continue
					}
					t.Fatalf("%s levels %v offset %d: %v", tc.name, levels, off, err)
				}
				allStored := true
				for _, l := range levels {
					if l != 0 {
						allStored = false
					}
				}
				prev := -1
				for i, rec := range res.Records {
					if rec.Undetermined != 0 || bytes.IndexByte(rec.Data, pugz.Undetermined) >= 0 {
						t.Fatalf("%s levels %v offset %d: record %d overlaps a hole: %q",
							tc.name, levels, off, i, rec.Data)
					}
					idx, known := byContent[string(rec.Data)]
					if !known {
						t.Fatalf("%s levels %v offset %d: record %d not in oracle: %q",
							tc.name, levels, off, i, rec.Data)
					}
					if idx <= prev {
						t.Fatalf("%s levels %v offset %d: record order %d after %d", tc.name, levels, off, idx, prev)
					}
					if allStored && prev >= 0 && idx != prev+1 {
						t.Fatalf("%s levels %v offset %d: gap in fully stored stream: %d -> %d",
							tc.name, levels, off, prev, idx)
					}
					prev = idx
				}
				// Recovery is only guaranteed where the context
				// resolves: stored streams (no backrefs) and syncs at
				// the stream head (empty context). Elsewhere a short
				// high-level member may stay all-holes, which is the
				// paper's documented failure mode, not a bug.
				if len(res.Records) == 0 && (allStored || off == 0) {
					t.Fatalf("%s levels %v offset %d: no records recovered", tc.name, levels, off)
				}
				if allStored && res.FirstResolvedBlock < 0 {
					t.Fatalf("%s levels %v offset %d: stored stream not record-resolved", tc.name, levels, off)
				}
			}
		}
	}
}

func TestRecordScanMatchesOracle(t *testing.T) {
	cases := []struct {
		name   string
		data   []byte
		framer pugz.Framer
	}{
		{"jsonl", framing.GenJSONL(3000, 21), pugz.NewlineFraming{ValidateJSON: true}},
		{"warc", framing.GenWARC(500, 22), pugz.WARCFraming{}},
	}
	for _, tc := range cases {
		for _, levels := range [][]int{{0, 1, 6, 9}, {6}} {
			gz, _ := multiMemberGz(t, tc.data, levels)
			plain := gunzipOracle(t, gz)
			want := tc.framer.Records(plain, true, true)

			f, err := pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 2, MinChunk: 32 << 10})
			if err != nil {
				t.Fatal(err)
			}
			sc, err := f.Records(0, pugz.RecordOptions{Framer: tc.framer})
			if err != nil {
				t.Fatal(err)
			}
			i := 0
			for sc.Next() {
				rec := sc.Record()
				if i >= len(want) {
					t.Fatalf("%s levels %v: scanner yielded extra record %d: %q", tc.name, levels, i, rec.Data)
				}
				if rec.Offset != int64(want[i].Start) {
					t.Fatalf("%s levels %v: record %d at offset %d, oracle says %d",
						tc.name, levels, i, rec.Offset, want[i].Start)
				}
				if !bytes.Equal(rec.Data, want[i].Bytes(plain)) {
					t.Fatalf("%s levels %v: record %d content mismatch", tc.name, levels, i)
				}
				i++
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if i != len(want) {
				t.Fatalf("%s levels %v: scanner yielded %d records, oracle %d", tc.name, levels, i, len(want))
			}

			// The whole ascending scan must have cost about one
			// sequential pass — the cursor pool at work.
			if inflated := f.InflatedBytes(); inflated > int64(len(plain))*3/2 {
				t.Fatalf("%s levels %v: scan inflated %d bytes for a %d byte stream",
					tc.name, levels, inflated, len(plain))
			}
		}
	}
}

func TestRecordScanSyncMidStream(t *testing.T) {
	data := framing.GenJSONL(2000, 31)
	gz, _ := multiMemberGz(t, data, []int{0, 6})
	fr := pugz.NewlineFraming{ValidateJSON: true}
	plain := gunzipOracle(t, gz)
	want := fr.Records(plain, true, true)

	f, err := pugz.NewFileBytes(gz, pugz.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	from := int64(len(plain)) / 3 // mid-record with overwhelming probability
	sc, err := f.Records(from, pugz.RecordOptions{Framer: fr, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []pugz.Record
	for sc.Next() {
		got = append(got, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Expected: exactly the oracle records beginning after from (the
	// record containing from is cut, and a record starting exactly at
	// from has no confirmable left delimiter inside the scan).
	var exp []pugz.FramedRecord
	for _, r := range want {
		if int64(r.Start) > from {
			exp = append(exp, r)
		}
	}
	if len(got) != len(exp) {
		t.Fatalf("synced scan yielded %d records, want %d", len(got), len(exp))
	}
	for i := range exp {
		if got[i].Offset != int64(exp[i].Start) || !bytes.Equal(got[i].Data, exp[i].Bytes(plain)) {
			t.Fatalf("synced record %d mismatch at offset %d", i, got[i].Offset)
		}
	}
}

func TestRecordScanBounded(t *testing.T) {
	data := framing.GenLog(800, 41)
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	fr := pugz.NewlineFraming{}
	plain := gunzipOracle(t, gz)
	want := fr.Records(plain, true, true)
	to := int64(want[300].Start)

	f, _ := pugz.NewFileBytes(gz, pugz.FileOptions{})
	sc, err := f.Records(0, pugz.RecordOptions{Framer: fr, To: to})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for sc.Next() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("bounded scan yielded %d records, want 300", n)
	}
}

func TestRecordScanFASTQMatchesFraming(t *testing.T) {
	// The scanner under the default FASTQ framing must agree with
	// framing the exact plaintext directly.
	data := fastq.Generate(fastq.GenOptions{Reads: 3000, Seed: 51})
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	fr := pugz.FASTQFraming{}
	want := fr.Records(data, true, true)

	f, _ := pugz.NewFileBytes(gz, pugz.FileOptions{})
	sc, err := f.Records(0, pugz.RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for sc.Next() {
		rec := sc.Record()
		if i >= len(want) || rec.Offset != int64(want[i].Start) || !bytes.Equal(rec.Data, want[i].Bytes(data)) {
			t.Fatalf("fastq scan record %d diverges from direct framing", i)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("fastq scan yielded %d records, framing %d", i, len(want))
	}
}

func TestSequencesMirrorRecordsUnderFASTQ(t *testing.T) {
	// Back-compat: under the default framer the deprecated Sequences
	// view must mirror Records exactly.
	data := fastq.Generate(fastq.GenOptions{Reads: 4000, Seed: 61})
	gz, err := pugz.Compress(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pugz.RandomAccess(gz, int64(len(gz))/3, pugz.RandomAccessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequences) != len(res.Records) || len(res.Records) == 0 {
		t.Fatalf("%d sequences vs %d records", len(res.Sequences), len(res.Records))
	}
	for i, s := range res.Sequences {
		r := res.Records[i]
		if int64(s.Offset) != r.Offset || s.Undetermined != r.Undetermined || !bytes.Equal(s.Seq, r.Data) {
			t.Fatalf("sequence %d diverges from record view", i)
		}
	}
	// A non-FASTQ framer must not populate the deprecated view.
	res2, err := pugz.RandomAccess(gz, int64(len(gz))/3, pugz.RandomAccessOptions{Framer: pugz.NewlineFraming{}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Sequences != nil {
		t.Fatal("newline framing populated Sequences")
	}
}

func TestAttachIndex(t *testing.T) {
	data := framing.GenJSONL(2000, 71)
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pugz.BuildIndex(gz, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pugz.NewFileBytes(gz, pugz.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f.AttachIndex(ix)
	got := make([]byte, 1000)
	off := int64(len(data)) / 2
	if _, err := f.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[off:off+1000]) {
		t.Fatal("AttachIndex read mismatch")
	}
	// The typed attach must serve exactly like the blob round-trip.
	blob, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := pugz.NewFileBytes(gz, pugz.FileOptions{})
	if err := f2.SetIndex(blob); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, 1000)
	if _, err := f2.ReadAt(got2, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, got2) {
		t.Fatal("AttachIndex and SetIndex disagree")
	}
}
